//! Networks: routed prefixes populated with ground-truth hosts, aliased
//! regions, and churned (stale) addresses.

use crate::scheme::HostScheme;
use rand::rngs::StdRng;
use rand::Rng;
use sixgen_addr::{NybbleAddr, Prefix};
use std::collections::HashMap;
#[cfg(test)]
use std::collections::HashSet;

/// What kind of service a host population represents. Seeds inherit the
/// kind of the host they point at, enabling the paper's §6.7.1 experiment
/// (running 6Gen on name-server seeds only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HostKind {
    /// Generic web/content servers (the bulk of AAAA records).
    #[default]
    Web,
    /// DNS name servers (NS records).
    NameServer,
    /// Mail servers (MX records).
    Mail,
    /// Routers / infrastructure.
    Router,
}

/// How hosts of a population are spread across the subnet bits between the
/// routed prefix and the /64 boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum SubnetPlan {
    /// All hosts share one subnet identifier.
    Single(u64),
    /// Host `i` lands in subnet `i % count` — dense, enumerable subnets
    /// (the common hosting-provider layout).
    Sequential {
        /// Number of consecutive subnets in use.
        count: u64,
    },
    /// Hosts are spread over `count` subnets drawn uniformly at random
    /// from the full subnet space — sparse, hard-to-enumerate layouts.
    RandomSparse {
        /// Number of distinct subnets drawn.
        count: u64,
    },
    /// Host `i` lands in subnet `(i % count) * stride` — per-customer
    /// delegation at a coarser boundary (e.g. a /56 or /52 per customer),
    /// which makes *higher* subnet nybbles the dynamic ones.
    Strided {
        /// Number of subnets in use.
        count: u64,
        /// Spacing between consecutive subnet identifiers.
        stride: u64,
    },
}

impl SubnetPlan {
    /// The subnet identifier for host `index`, given `width` available
    /// subnet bits and a per-population list of pre-drawn random subnets.
    fn subnet_for(&self, index: u64, width: u32, drawn: &[u64]) -> u64 {
        let cap = |v: u64| {
            if width >= 64 {
                v
            } else {
                v & ((1u64 << width).wrapping_sub(1))
            }
        };
        match self {
            SubnetPlan::Single(id) => cap(*id),
            SubnetPlan::Sequential { count } => cap(index % (*count).max(1)),
            SubnetPlan::Strided { count, stride } => {
                cap((index % (*count).max(1)).wrapping_mul(*stride))
            }
            SubnetPlan::RandomSparse { .. } => {
                debug_assert!(!drawn.is_empty());
                cap(drawn[(index % drawn.len() as u64) as usize])
            }
        }
    }

    fn random_subnet_count(&self) -> usize {
        match self {
            SubnetPlan::RandomSparse { count } => *count as usize,
            _ => 0,
        }
    }
}

/// A group of hosts sharing an assignment scheme and subnet layout.
#[derive(Debug, Clone)]
pub struct HostPopulation {
    /// Interface-identifier assignment policy.
    pub scheme: HostScheme,
    /// Subnet layout.
    pub subnets: SubnetPlan,
    /// Number of *active* hosts.
    pub count: usize,
    /// Number of *churned* hosts: generated with the same scheme (so they
    /// appear in historical seed data) but no longer responsive (§6.6's
    /// now-inactive seeds).
    pub churned: usize,
    /// Service kind, inherited by seeds pointing at these hosts.
    pub kind: HostKind,
}

impl HostPopulation {
    /// A population of `count` active web hosts with no churn, in subnet 0.
    pub fn simple(scheme: HostScheme, count: usize) -> HostPopulation {
        HostPopulation {
            scheme,
            subnets: SubnetPlan::Single(0),
            count,
            churned: 0,
            kind: HostKind::Web,
        }
    }
}

/// A region in which **every** address responds (§6.2): CDN-style aliasing
/// where, e.g., "all addresses in a single /56 prefix belonging to Akamai
/// responded to probes on TCP/80".
#[derive(Debug, Clone)]
pub struct AliasedRegion {
    /// The fully-responsive prefix (must lie within the network's routed
    /// prefix).
    pub prefix: Prefix,
    /// Ports on which the whole region responds.
    pub ports: Vec<u16>,
}

/// Declarative description of one network: a routed prefix, its origin AS,
/// host populations, and aliasing behaviour.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// The BGP-announced prefix.
    pub prefix: Prefix,
    /// Origin AS number.
    pub asn: u32,
    /// AS organization name (Table 1 reporting).
    pub name: String,
    /// Host groups.
    pub populations: Vec<HostPopulation>,
    /// Fully-responsive sub-regions.
    pub aliased: Vec<AliasedRegion>,
    /// Ports the *active hosts* respond on (aliased regions carry their
    /// own port lists).
    pub ports: Vec<u16>,
}

impl NetworkSpec {
    /// A network with a single population responding on TCP/80.
    pub fn simple(
        prefix: Prefix,
        asn: u32,
        name: impl Into<String>,
        scheme: HostScheme,
        count: usize,
    ) -> NetworkSpec {
        NetworkSpec {
            prefix,
            asn,
            name: name.into(),
            populations: vec![HostPopulation::simple(scheme, count)],
            aliased: Vec::new(),
            ports: vec![80],
        }
    }
}

/// A materialized network: concrete ground-truth address sets.
#[derive(Debug, Clone)]
pub struct Network {
    spec: NetworkSpec,
    /// Active host addresses and their kinds.
    active: HashMap<NybbleAddr, HostKind>,
    /// Once-active, now-unresponsive addresses (appear in seed data).
    churned: HashMap<NybbleAddr, HostKind>,
}

impl Network {
    /// Generates the ground truth for a spec. Deterministic for a given
    /// RNG state.
    ///
    /// # Panics
    /// Panics if the routed prefix is longer than 64 bits (host schemes
    /// occupy the low 64) or an aliased region lies outside the prefix.
    pub fn materialize(spec: NetworkSpec, rng: &mut StdRng) -> Network {
        assert!(
            spec.prefix.len() <= 64,
            "routed prefix {} too long for host populations",
            spec.prefix
        );
        for region in &spec.aliased {
            assert!(
                spec.prefix.covers(&region.prefix),
                "aliased region {} outside network {}",
                region.prefix,
                spec.prefix
            );
        }
        let subnet_width = 64 - spec.prefix.len() as u32;
        let mut active = HashMap::new();
        let mut churned = HashMap::new();
        for pop in &spec.populations {
            let drawn: Vec<u64> = (0..pop.subnets.random_subnet_count())
                .map(|_| {
                    if subnet_width >= 64 {
                        rng.gen::<u64>()
                    } else if subnet_width == 0 {
                        0
                    } else {
                        rng.gen_range(0..1u64 << subnet_width)
                    }
                })
                .collect();
            for index in 0..(pop.count + pop.churned) as u64 {
                let subnet = pop.subnets.subnet_for(index, subnet_width, &drawn);
                let iid = pop.scheme.iid(index, rng);
                let bits = spec.prefix.network().bits()
                    | ((subnet as u128) << 64)
                    | iid as u128;
                let addr = NybbleAddr::from_bits(bits);
                if index < pop.count as u64 {
                    active.insert(addr, pop.kind);
                } else if !active.contains_key(&addr) {
                    churned.insert(addr, pop.kind);
                }
            }
        }
        Network {
            spec,
            active,
            churned,
        }
    }

    /// The network's spec (prefix, ASN, name, ports, aliasing).
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// `true` if `addr` responds on `port`: it is an active host and the
    /// network serves that port, or it lies in an aliased region serving
    /// that port.
    pub fn is_responsive(&self, addr: NybbleAddr, port: u16) -> bool {
        if self
            .spec
            .aliased
            .iter()
            .any(|r| r.ports.contains(&port) && r.prefix.contains(addr))
        {
            return true;
        }
        self.spec.ports.contains(&port) && self.active.contains_key(&addr)
    }

    /// Active hosts with their kinds.
    pub fn active(&self) -> &HashMap<NybbleAddr, HostKind> {
        &self.active
    }

    /// Churned (stale) addresses with their kinds.
    pub fn churned(&self) -> &HashMap<NybbleAddr, HostKind> {
        &self.churned
    }

    /// Number of active hosts.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The fully-responsive regions.
    pub fn aliased_regions(&self) -> &[AliasedRegion] {
        &self.spec.aliased
    }
}

/// A deterministic set of distinct addresses drawn from `prefix`.
pub(crate) fn random_addr_in_prefix(prefix: Prefix, rng: &mut StdRng) -> NybbleAddr {
    let host_bits = 128 - prefix.len() as u32;
    let noise: u128 = if host_bits == 0 {
        0
    } else if host_bits >= 128 {
        rng.gen::<u128>()
    } else {
        rng.gen::<u128>() & ((1u128 << host_bits) - 1)
    };
    NybbleAddr::from_bits(prefix.network().bits() | noise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn simple_network_materializes_expected_addresses() {
        let spec = NetworkSpec::simple(
            p("2001:db8::/32"),
            64496,
            "Example",
            HostScheme::LowByteSequential,
            10,
        );
        let net = Network::materialize(spec, &mut rng());
        assert_eq!(net.active_count(), 10);
        assert!(net.is_responsive("2001:db8::1".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8::a".parse().unwrap(), 80));
        assert!(!net.is_responsive("2001:db8::b".parse().unwrap(), 80));
        assert!(
            !net.is_responsive("2001:db8::1".parse().unwrap(), 443),
            "port not served"
        );
    }

    #[test]
    fn subnet_plans_place_hosts() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/48"),
            asn: 1,
            name: "X".into(),
            populations: vec![HostPopulation {
                scheme: HostScheme::LowByteSequential,
                subnets: SubnetPlan::Sequential { count: 4 },
                count: 8,
                churned: 0,
                kind: HostKind::Web,
            }],
            aliased: Vec::new(),
            ports: vec![80],
        };
        let net = Network::materialize(spec, &mut rng());
        // Host 0 → subnet 0 iid 1; host 5 → subnet 1 iid 6.
        assert!(net.is_responsive("2001:db8:0:0::1".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8:0:1::6".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8:0:3::4".parse().unwrap(), 80));
        assert!(!net.is_responsive("2001:db8:0:4::1".parse().unwrap(), 80));
    }

    #[test]
    fn strided_subnets_place_hosts_at_coarse_boundaries() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/32"),
            asn: 1,
            name: "X".into(),
            populations: vec![HostPopulation {
                scheme: HostScheme::LowByteSequential,
                subnets: SubnetPlan::Strided { count: 3, stride: 0x1_0000 },
                count: 6,
                churned: 0,
                kind: HostKind::Web,
            }],
            aliased: Vec::new(),
            ports: vec![80],
        };
        let net = Network::materialize(spec, &mut rng());
        // Subnet value 0x10000 occupies bit 80 of the address, i.e. the
        // third group: host 0 → 2001:db8:0:…, host 1 → 2001:db8:1:…,
        // host 2 → 2001:db8:2:…; host 3 wraps back to subnet 0 with iid 4.
        assert!(net.is_responsive("2001:db8::1".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8:1::2".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8:2::3".parse().unwrap(), 80));
        assert!(net.is_responsive("2001:db8::4".parse().unwrap(), 80));
        assert!(!net.is_responsive("2001:db8:3::1".parse().unwrap(), 80));
    }

    #[test]
    fn random_sparse_subnets_stay_in_width() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/56"),
            asn: 1,
            name: "X".into(),
            populations: vec![HostPopulation {
                scheme: HostScheme::LowByteSequential,
                subnets: SubnetPlan::RandomSparse { count: 3 },
                count: 30,
                churned: 0,
                kind: HostKind::Web,
            }],
            aliased: Vec::new(),
            ports: vec![80],
        };
        let net = Network::materialize(spec.clone(), &mut rng());
        let prefix = p("2001:db8::/56");
        for addr in net.active().keys() {
            assert!(prefix.contains(*addr), "{addr} escaped the /56");
        }
        // At most 3 distinct subnets (the /64s).
        let subnets: HashSet<u128> = net
            .active()
            .keys()
            .map(|a| a.bits() >> 64)
            .collect();
        assert!(subnets.len() <= 3);
    }

    #[test]
    fn aliased_region_responds_everywhere() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/32"),
            asn: 1,
            name: "CDN".into(),
            populations: vec![],
            aliased: vec![AliasedRegion {
                prefix: p("2001:db8:42::/48"),
                ports: vec![80],
            }],
            ports: vec![80],
        };
        let net = Network::materialize(spec, &mut rng());
        assert!(net.is_responsive("2001:db8:42:dead:beef::99".parse().unwrap(), 80));
        assert!(!net.is_responsive("2001:db8:43::1".parse().unwrap(), 80));
        assert!(
            !net.is_responsive("2001:db8:42::1".parse().unwrap(), 443),
            "aliased only on port 80"
        );
    }

    #[test]
    fn churned_hosts_do_not_respond() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/32"),
            asn: 1,
            name: "X".into(),
            populations: vec![HostPopulation {
                scheme: HostScheme::LowByteSequential,
                subnets: SubnetPlan::Single(0),
                count: 5,
                churned: 5,
                kind: HostKind::Web,
            }],
            aliased: Vec::new(),
            ports: vec![80],
        };
        let net = Network::materialize(spec, &mut rng());
        assert_eq!(net.active_count(), 5);
        assert_eq!(net.churned().len(), 5);
        for addr in net.churned().keys() {
            assert!(!net.is_responsive(*addr, 80), "churned {addr} responded");
        }
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn prefix_longer_than_64_rejected() {
        let spec = NetworkSpec::simple(
            p("2001:db8::/80"),
            1,
            "bad",
            HostScheme::LowByteSequential,
            1,
        );
        Network::materialize(spec, &mut rng());
    }

    #[test]
    #[should_panic(expected = "outside network")]
    fn aliased_region_outside_prefix_rejected() {
        let spec = NetworkSpec {
            prefix: p("2001:db8::/32"),
            asn: 1,
            name: "bad".into(),
            populations: vec![],
            aliased: vec![AliasedRegion {
                prefix: p("2001:db9::/48"),
                ports: vec![80],
            }],
            ports: vec![80],
        };
        Network::materialize(spec, &mut rng());
    }

    #[test]
    fn random_addr_in_prefix_is_contained() {
        let mut r = rng();
        for text in ["2001:db8::/96", "2001:db8::/112", "::/0", "2001:db8::1/128"] {
            let prefix = p(text);
            for _ in 0..20 {
                assert!(prefix.contains(random_addr_in_prefix(prefix, &mut r)));
            }
        }
    }
}
