//! Property tests for the simulated-Internet substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen_addr::{NybbleAddr, Prefix};
use sixgen_simnet::dealias::{detect_aliased, DealiasConfig};
use sixgen_simnet::{
    AliasedRegion, HostKind, HostPopulation, HostScheme, Internet, NetworkSpec, ProbeConfig,
    Prober, SeedExtraction, SubnetPlan,
};

fn arb_scheme() -> impl Strategy<Value = HostScheme> {
    prop_oneof![
        Just(HostScheme::LowByteSequential),
        (1u8..8).prop_map(|n| HostScheme::LowByteRandom { nybbles: n }),
        any::<[u8; 3]>().prop_map(|oui| HostScheme::Eui64 { oui }),
        Just(HostScheme::PrivacyRandom),
        Just(HostScheme::Wordy),
        any::<[u8; 4]>().prop_map(|base| HostScheme::Ipv4Embedded { base }),
        (1u16..10000).prop_map(|port| HostScheme::PortEmbedded { port }),
    ]
}

fn arb_plan() -> impl Strategy<Value = SubnetPlan> {
    prop_oneof![
        (0u64..1000).prop_map(SubnetPlan::Single),
        (1u64..50).prop_map(|count| SubnetPlan::Sequential { count }),
        (1u64..20).prop_map(|count| SubnetPlan::RandomSparse { count }),
        ((1u64..20), (1u64..0x10000)).prop_map(|(count, stride)| SubnetPlan::Strided {
            count,
            stride
        }),
    ]
}

fn build(
    scheme: HostScheme,
    plan: SubnetPlan,
    count: usize,
    churned: usize,
    world_seed: u64,
) -> Internet {
    let mut rng = StdRng::seed_from_u64(world_seed);
    Internet::build(
        vec![NetworkSpec {
            prefix: "2001:db8::/32".parse().unwrap(),
            asn: 64496,
            name: "Prop".into(),
            populations: vec![HostPopulation {
                scheme,
                subnets: plan,
                count,
                churned,
                kind: HostKind::Web,
            }],
            aliased: vec![],
            ports: vec![80],
        }],
        &mut rng,
    )
    .expect("unique prefixes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hosts_stay_inside_their_network(
        scheme in arb_scheme(),
        plan in arb_plan(),
        count in 1usize..60,
        seed in any::<u64>(),
    ) {
        let internet = build(scheme, plan, count, 0, seed);
        let prefix: Prefix = "2001:db8::/32".parse().unwrap();
        let network = &internet.networks()[0];
        prop_assert!(network.active_count() <= count, "duplicate collapse only shrinks");
        for addr in network.active().keys() {
            prop_assert!(prefix.contains(*addr), "{addr} escaped");
            prop_assert!(internet.is_responsive(*addr, 80));
            prop_assert!(!internet.is_responsive(*addr, 443), "wrong port");
        }
    }

    #[test]
    fn churned_hosts_never_respond(
        scheme in arb_scheme(),
        count in 1usize..30,
        churned in 1usize..30,
        seed in any::<u64>(),
    ) {
        let internet = build(scheme, SubnetPlan::Single(0), count, churned, seed);
        let network = &internet.networks()[0];
        for addr in network.churned().keys() {
            prop_assert!(!internet.is_responsive(*addr, 80));
        }
    }

    #[test]
    fn extraction_is_a_subset_of_ground_truth(
        scheme in arb_scheme(),
        plan in arb_plan(),
        count in 1usize..60,
        visibility in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let internet = build(scheme, plan, count, 5, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let records = internet.extract_seeds(
            &SeedExtraction { visibility, stale_visibility: 1.0 },
            &mut rng,
        );
        let network = &internet.networks()[0];
        for record in &records {
            prop_assert!(
                network.active().contains_key(&record.addr)
                    || network.churned().contains_key(&record.addr)
            );
        }
        // Full visibility captures everything.
        if visibility == 1.0 {
            prop_assert_eq!(
                records.len(),
                network.active_count() + network.churned().len()
            );
        }
    }

    #[test]
    fn prober_accounting_matches_scan_results(
        scheme in arb_scheme(),
        count in 1usize..40,
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let internet = build(scheme, SubnetPlan::Single(0), count, 0, seed);
        let mut prober = Prober::new(
            &internet,
            ProbeConfig { loss, retries: 2, rng_seed: seed, ..ProbeConfig::default() },
        )
        .expect("valid probe config");
        let network = &internet.networks()[0];
        let mut targets: Vec<NybbleAddr> = network.active().keys().copied().collect();
        targets.push("2001:db8::dead:ffff".parse().unwrap());
        let n_targets = {
            let mut t = targets.clone();
            t.sort_unstable();
            t.dedup();
            t.len() as u64
        };
        let result = prober.scan(targets, 80);
        prop_assert_eq!(result.targets, n_targets);
        prop_assert!(result.hits.len() as u64 <= result.targets);
        prop_assert!(result.probes >= result.targets, "at least one probe each");
        prop_assert!(result.probes <= result.targets * 3, "retries bounded");
        // Every reported hit is truly responsive.
        for hit in &result.hits {
            prop_assert!(internet.is_responsive(*hit, 80));
        }
    }

    #[test]
    fn alias_detector_never_flags_honest_networks(
        scheme in arb_scheme(),
        count in 1usize..50,
        seed in any::<u64>(),
    ) {
        let internet = build(scheme, SubnetPlan::Single(0), count, 0, seed);
        let network = &internet.networks()[0];
        let hits: Vec<NybbleAddr> = network.active().keys().copied().collect();
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let report = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
        prop_assert!(report.aliased.is_empty(), "false alias positives: {:?}", report.aliased);
    }

    #[test]
    fn alias_detector_always_flags_planted_regions(region_subnet in 0u16..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let region: Prefix = format!("2600:aaaa:{region_subnet:x}::/64").parse().unwrap();
        let internet = Internet::build(
            vec![NetworkSpec {
                prefix: "2600:aaaa::/32".parse().unwrap(),
                asn: 1,
                name: "Cdn".into(),
                populations: vec![],
                aliased: vec![AliasedRegion { prefix: region, ports: vec![80] }],
                ports: vec![80],
            }],
            &mut rng,
        )
        .expect("unique prefixes");
        let hit = NybbleAddr::from_bits(region.network().bits() | 0x1234);
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let report = detect_aliased(&mut prober, &[hit], 80, &DealiasConfig::default());
        prop_assert!(report.is_aliased(hit));
    }
}
