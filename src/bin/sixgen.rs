//! `sixgen` — command-line target generation for IPv6 scanning.
//!
//! ```text
//! sixgen generate --seeds <file> [--budget N] [--mode loose|tight] [--out <file>] [--binary]
//! sixgen analyze  --seeds <file>
//! sixgen split    --seeds <file> --groups K --out-prefix <path>
//! sixgen entropy-ip --seeds <file> [--budget N] [--out <file>]
//! ```
//!
//! * `generate` — run 6Gen over a seed hitlist (one address per line, `#`
//!   comments allowed) and write the generated targets.
//! * `analyze` — print the per-nybble entropy profile and the final 6Gen
//!   clusters for a seed set: a quick look at a network's address
//!   structure.
//! * `split` — split a hitlist into K random groups (train/test
//!   experiments).
//! * `entropy-ip` — generate targets with the Entropy/IP baseline instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::NybbleAddr;
use sixgen::core::{ClusterMode, Config, SixGen};
use sixgen::datasets::io::{read_hitlist_file, write_hitlist_binary_file, write_hitlist_file};
use sixgen::datasets::split_groups;
use sixgen::entropy_ip::{entropy_profile, EntropyIpConfig, EntropyIpModel};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sixgen generate   --seeds FILE [--budget N] [--mode loose|tight] [--out FILE] [--binary] [--rng-seed N]\n  sixgen analyze    --seeds FILE [--budget N]\n  sixgen split      --seeds FILE --groups K --out-prefix PATH [--rng-seed N]\n  sixgen entropy-ip --seeds FILE [--budget N] [--out FILE] [--rng-seed N]"
    );
    ExitCode::from(2)
}

struct Cli {
    seeds: Option<PathBuf>,
    budget: u64,
    mode: ClusterMode,
    out: Option<PathBuf>,
    binary: bool,
    groups: usize,
    out_prefix: Option<PathBuf>,
    rng_seed: u64,
}

fn parse(args: &[String]) -> Option<Cli> {
    let mut cli = Cli {
        seeds: None,
        budget: 1_000_000,
        mode: ClusterMode::Loose,
        out: None,
        binary: false,
        groups: 10,
        out_prefix: None,
        rng_seed: 0x6CE4,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => cli.seeds = Some(PathBuf::from(it.next()?)),
            "--budget" => cli.budget = it.next()?.parse().ok()?,
            "--mode" => {
                cli.mode = match it.next()?.as_str() {
                    "loose" => ClusterMode::Loose,
                    "tight" => ClusterMode::Tight,
                    _ => return None,
                }
            }
            "--out" => cli.out = Some(PathBuf::from(it.next()?)),
            "--binary" => cli.binary = true,
            "--groups" => cli.groups = it.next()?.parse().ok()?,
            "--out-prefix" => cli.out_prefix = Some(PathBuf::from(it.next()?)),
            "--rng-seed" => cli.rng_seed = it.next()?.parse().ok()?,
            _ => return None,
        }
    }
    Some(cli)
}

fn load_seeds(cli: &Cli) -> Result<Vec<NybbleAddr>, String> {
    let path = cli.seeds.as_ref().ok_or("--seeds is required")?;
    let seeds =
        read_hitlist_file(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if seeds.is_empty() {
        return Err(format!("{}: no addresses", path.display()));
    }
    Ok(seeds)
}

fn write_targets(cli: &Cli, targets: &[NybbleAddr]) -> Result<(), String> {
    match (&cli.out, cli.binary) {
        (Some(path), true) => write_hitlist_binary_file(path, targets)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        (Some(path), false) => write_hitlist_file(path, targets)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        (None, _) => {
            let mut stdout = std::io::stdout().lock();
            sixgen::datasets::io::write_hitlist(&mut stdout, targets)
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_generate(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    let outcome = SixGen::new(
        seeds,
        Config {
            budget: cli.budget,
            mode: cli.mode,
            threads: 0,
            rng_seed: cli.rng_seed,
        },
    )
    .run();
    eprintln!(
        "6Gen: {} targets from {} seeds ({} clusters, stopped: {:?})",
        outcome.targets.len(),
        outcome.stats.seed_count,
        outcome.clusters.len(),
        outcome.stats.termination,
    );
    write_targets(cli, outcome.targets.as_slice())
}

fn cmd_analyze(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    println!("seeds: {}", seeds.len());
    println!("\nper-nybble entropy (0 = fixed, 1 = uniform):");
    let profile = entropy_profile(&seeds);
    for (i, h) in profile.iter().enumerate() {
        let bar = "#".repeat((h * 32.0).round() as usize);
        println!("  nybble {:>2}: {:>5.3} {}", i + 1, h, bar);
    }
    let outcome = SixGen::new(
        seeds,
        Config {
            budget: cli.budget,
            rng_seed: cli.rng_seed,
            threads: 0,
            ..Config::default()
        },
    )
    .run();
    println!("\n6Gen clusters (budget {}):", cli.budget);
    let mut clusters = outcome.clusters;
    clusters.sort_by_key(|c| std::cmp::Reverse(c.seed_count));
    for c in clusters.iter().take(24) {
        println!(
            "  {:<40} {:>7} seeds / {:>12} addrs",
            c.range.to_string(),
            c.seed_count,
            c.range_size
        );
    }
    if clusters.len() > 24 {
        println!("  ... and {} more clusters", clusters.len() - 24);
    }
    Ok(())
}

fn cmd_split(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    let prefix = cli.out_prefix.as_ref().ok_or("--out-prefix is required")?;
    if cli.groups == 0 {
        return Err("--groups must be positive".into());
    }
    let mut rng = StdRng::seed_from_u64(cli.rng_seed);
    let groups = split_groups(&seeds, cli.groups, &mut rng);
    for (i, group) in groups.iter().enumerate() {
        let path = PathBuf::from(format!("{}.{i}.txt", prefix.display()));
        write_hitlist_file(&path, group)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {} ({} addresses)", path.display(), group.len());
    }
    Ok(())
}

fn cmd_entropy_ip(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
    eprintln!(
        "Entropy/IP: {} segments, generating up to {} targets",
        model.segments().len(),
        cli.budget
    );
    let mut rng = StdRng::seed_from_u64(cli.rng_seed);
    let targets = model.generate(cli.budget as usize, &mut rng);
    eprintln!("generated {} distinct targets", targets.len());
    write_targets(cli, &targets)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let Some(cli) = parse(rest) else {
        return usage();
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&cli),
        "analyze" => cmd_analyze(&cli),
        "split" => cmd_split(&cli),
        "entropy-ip" => cmd_entropy_ip(&cli),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
