//! `sixgen` — command-line target generation for IPv6 scanning.
//!
//! ```text
//! sixgen generate --seeds <file> [--budget N] [--mode loose|tight] [--out <file>] [--binary]
//! sixgen analyze  --seeds <file>
//! sixgen split    --seeds <file> --groups K --out-prefix <path>
//! sixgen entropy-ip --seeds <file> [--budget N] [--out <file>]
//! sixgen simulate [--hosts N] [--loss P] [--bursty] [--rate-limit PPS] [--retries N]
//!                 [--backoff DUR] [--retransmit-budget N] [--rate-pps N]
//! ```
//!
//! * `generate` — run 6Gen over a seed hitlist (one address per line, `#`
//!   comments allowed) and write the generated targets.
//! * `analyze` — print the per-nybble entropy profile and the final 6Gen
//!   clusters for a seed set: a quick look at a network's address
//!   structure.
//! * `split` — split a hitlist into K random groups (train/test
//!   experiments).
//! * `entropy-ip` — generate targets with the Entropy/IP baseline instead.
//! * `simulate` — end-to-end dry run on a synthetic Internet: extract
//!   seeds, run 6Gen, then scan the generated targets through a
//!   configurable fault stack (uniform loss, Gilbert–Elliott bursts,
//!   per-/48 ICMP rate limiting) with optional exponential-backoff retries
//!   and a total retransmit budget.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::NybbleAddr;
use sixgen::core::{
    CheckpointWriter, ClusterMode, Config, EngineCheckpoint, Outcome, Session, SixGen,
};
use sixgen::datasets::io::{read_hitlist_file, write_hitlist_binary_file, write_hitlist_file};
use sixgen::datasets::split_groups;
use sixgen::entropy_ip::{entropy_profile, EntropyIpConfig, EntropyIpModel};
use sixgen::obs::{MetricsRegistry, TraceSink};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sixgen generate   --seeds FILE [--budget N] [--mode loose|tight] [--out FILE] [--binary] [--rng-seed N] [--time-limit DUR] [--metrics-out FILE] [--metrics-format json|prom] [--trace-out FILE] [--trace-stream FILE] [--trace-summary] [--checkpoint-out FILE] [--checkpoint-every N] [--resume CKPT]\n  sixgen analyze    --seeds FILE [--budget N]\n  sixgen split      --seeds FILE --groups K --out-prefix PATH [--rng-seed N]\n  sixgen entropy-ip --seeds FILE [--budget N] [--out FILE] [--rng-seed N]\n  sixgen simulate   [--hosts N] [--budget N] [--loss P] [--bursty] [--rate-limit PPS]\n                    [--retries N] [--backoff DUR] [--retransmit-budget N] [--rate-pps N]\n                    [--rng-seed N] [--time-limit DUR] [--metrics-out FILE] [--metrics-format json|prom]\n                    [--trace-out FILE] [--trace-stream FILE] [--trace-summary]\n                    [--checkpoint-out FILE] [--checkpoint-every N] [--resume CKPT]\n\nDUR: seconds, or with ms/s/m/h suffix (e.g. 250ms, 90s, 5m)\n--metrics-out: write engine/prober metrics (JSON by default; a .prom extension\n               or --metrics-format prom selects Prometheus text exposition)\n--trace-out: write a Chrome trace-event JSON (Perfetto / chrome://tracing)\n--trace-stream: additionally stream every span to FILE as it completes\n                (lossless; --trace-out's ring keeps only the newest spans)\n--trace-summary: print a per-span-kind self-time summary table\n--checkpoint-out: snapshot resumable engine state to FILE (atomic rename)\n                  every N rounds (--checkpoint-every, default 1)\n--resume: continue an interrupted run from a checkpoint; the seed set, mode,\n          and RNG seed come from the checkpoint, and --budget (if given)\n          tops up the probe budget"
    );
    ExitCode::from(2)
}

struct Cli {
    seeds: Option<PathBuf>,
    /// `None` means "not given": commands default to 1 000 000, and
    /// `--resume` continues under the checkpoint's budget.
    budget: Option<u64>,
    mode: ClusterMode,
    out: Option<PathBuf>,
    binary: bool,
    groups: usize,
    out_prefix: Option<PathBuf>,
    rng_seed: u64,
    time_limit: Option<std::time::Duration>,
    hosts: usize,
    loss: f64,
    bursty: bool,
    rate_limit: Option<f64>,
    retries: u8,
    backoff: Option<std::time::Duration>,
    retransmit_budget: Option<u64>,
    rate_pps: u64,
    metrics_out: Option<PathBuf>,
    metrics_format: Option<MetricsFormat>,
    trace_out: Option<PathBuf>,
    trace_stream: Option<PathBuf>,
    trace_summary: bool,
    checkpoint_out: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: Option<PathBuf>,
}

/// Output format for `--metrics-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prometheus,
}

/// Parses a human duration: plain seconds (`30`), or with a `ms`/`s`/`m`/`h`
/// suffix (`250ms`, `90s`, `5m`, `1h`). Fractions are allowed (`1.5m`).
fn parse_duration(text: &str) -> Option<std::time::Duration> {
    let (number, scale) = if let Some(n) = text.strip_suffix("ms") {
        (n, 0.001)
    } else if let Some(n) = text.strip_suffix('h') {
        (n, 3600.0)
    } else if let Some(n) = text.strip_suffix('m') {
        (n, 60.0)
    } else if let Some(n) = text.strip_suffix('s') {
        (n, 1.0)
    } else {
        (text, 1.0)
    };
    let value: f64 = number.parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    Some(std::time::Duration::from_secs_f64(value * scale))
}

fn parse(args: &[String]) -> Option<Cli> {
    let mut cli = Cli {
        seeds: None,
        budget: None,
        mode: ClusterMode::Loose,
        out: None,
        binary: false,
        groups: 10,
        out_prefix: None,
        rng_seed: 0x6CE4,
        time_limit: None,
        hosts: 2000,
        loss: 0.0,
        bursty: false,
        rate_limit: None,
        retries: 0,
        backoff: None,
        retransmit_budget: None,
        rate_pps: 100_000,
        metrics_out: None,
        metrics_format: None,
        trace_out: None,
        trace_stream: None,
        trace_summary: false,
        checkpoint_out: None,
        checkpoint_every: None,
        resume: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => cli.seeds = Some(PathBuf::from(it.next()?)),
            "--budget" => cli.budget = Some(it.next()?.parse().ok()?),
            "--mode" => {
                cli.mode = match it.next()?.as_str() {
                    "loose" => ClusterMode::Loose,
                    "tight" => ClusterMode::Tight,
                    _ => return None,
                }
            }
            "--out" => cli.out = Some(PathBuf::from(it.next()?)),
            "--binary" => cli.binary = true,
            "--groups" => cli.groups = it.next()?.parse().ok()?,
            "--out-prefix" => cli.out_prefix = Some(PathBuf::from(it.next()?)),
            "--rng-seed" => cli.rng_seed = it.next()?.parse().ok()?,
            "--time-limit" => cli.time_limit = Some(parse_duration(it.next()?)?),
            "--hosts" => cli.hosts = it.next()?.parse().ok()?,
            "--loss" => cli.loss = it.next()?.parse().ok()?,
            "--bursty" => cli.bursty = true,
            "--rate-limit" => cli.rate_limit = Some(it.next()?.parse().ok()?),
            "--retries" => cli.retries = it.next()?.parse().ok()?,
            "--backoff" => cli.backoff = Some(parse_duration(it.next()?)?),
            "--retransmit-budget" => cli.retransmit_budget = Some(it.next()?.parse().ok()?),
            "--rate-pps" => cli.rate_pps = it.next()?.parse().ok()?,
            "--metrics-out" => cli.metrics_out = Some(PathBuf::from(it.next()?)),
            "--metrics-format" => {
                cli.metrics_format = Some(match it.next()?.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" | "prometheus" => MetricsFormat::Prometheus,
                    _ => return None,
                })
            }
            "--trace-out" => cli.trace_out = Some(PathBuf::from(it.next()?)),
            "--trace-stream" => cli.trace_stream = Some(PathBuf::from(it.next()?)),
            "--trace-summary" => cli.trace_summary = true,
            "--checkpoint-out" => cli.checkpoint_out = Some(PathBuf::from(it.next()?)),
            "--checkpoint-every" => cli.checkpoint_every = Some(it.next()?.parse().ok()?),
            "--resume" => cli.resume = Some(PathBuf::from(it.next()?)),
            _ => return None,
        }
    }
    Some(cli)
}

/// The probe budget: `--budget` when given, else the historical default.
fn budget(cli: &Cli) -> u64 {
    cli.budget.unwrap_or(1_000_000)
}

fn load_seeds(cli: &Cli) -> Result<Vec<NybbleAddr>, String> {
    let path = cli.seeds.as_ref().ok_or("--seeds is required")?;
    let seeds =
        read_hitlist_file(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if seeds.is_empty() {
        return Err(format!("{}: no addresses", path.display()));
    }
    Ok(seeds)
}

fn write_targets(cli: &Cli, targets: &[NybbleAddr]) -> Result<(), String> {
    match (&cli.out, cli.binary) {
        (Some(path), true) => write_hitlist_binary_file(path, targets)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        (Some(path), false) => write_hitlist_file(path, targets)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        (None, _) => {
            let mut stdout = std::io::stdout().lock();
            sixgen::datasets::io::write_hitlist(&mut stdout, targets)
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
        }
    }
    Ok(())
}

/// Creates a registry when `--metrics-out` was given.
fn metrics_registry(cli: &Cli) -> Option<Arc<MetricsRegistry>> {
    cli.metrics_out.as_ref().map(|_| MetricsRegistry::shared())
}

/// Writes the registry to the `--metrics-out` path, if both are set. The
/// format is `--metrics-format` when given, else inferred from a `.prom`
/// extension, defaulting to JSON.
fn write_metrics(cli: &Cli, registry: &Option<Arc<MetricsRegistry>>) -> Result<(), String> {
    if let (Some(path), Some(registry)) = (&cli.metrics_out, registry) {
        let format = cli.metrics_format.unwrap_or_else(|| {
            if path.extension().is_some_and(|e| e == "prom") {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Json
            }
        });
        let (body, label) = match format {
            MetricsFormat::Json => (registry.to_json(), "json"),
            MetricsFormat::Prometheus => (registry.to_prometheus(), "prometheus"),
        };
        sixgen::obs::write_atomic(path, body.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("metrics written to {} ({label})", path.display());
    }
    Ok(())
}

/// Creates a trace sink when `--trace-out`, `--trace-stream`, or
/// `--trace-summary` was given. A `--trace-stream` path is opened (and the
/// document preamble written) immediately, so spans stream from the first
/// round onward.
fn trace_sink(cli: &Cli) -> Result<Option<Arc<TraceSink>>, String> {
    if cli.trace_out.is_none() && cli.trace_stream.is_none() && !cli.trace_summary {
        return Ok(None);
    }
    let sink = TraceSink::shared();
    if let Some(path) = &cli.trace_stream {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        sink.stream_to(Box::new(std::io::BufWriter::new(file)))
            .map_err(|e| format!("cannot stream to {}: {e}", path.display()))?;
    }
    Ok(Some(sink))
}

/// Writes the Chrome trace and/or prints the summary table, per the flags,
/// and closes the `--trace-stream` document.
fn write_trace(cli: &Cli, sink: &Option<Arc<TraceSink>>) -> Result<(), String> {
    let Some(sink) = sink else { return Ok(()) };
    if let Some(path) = &cli.trace_stream {
        let errors = sink.stream_errors();
        sink.finish_stream()
            .map_err(|e| format!("cannot finish {}: {e}", path.display()))?;
        if errors > 0 {
            eprintln!(
                "warning: trace stream to {} failed after {} spans",
                path.display(),
                sink.streamed()
            );
        } else {
            eprintln!(
                "trace streamed to {} ({} spans)",
                path.display(),
                sink.streamed()
            );
        }
    }
    if let Some(path) = &cli.trace_out {
        sixgen::obs::write_atomic(path, sink.to_chrome_json().as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "trace written to {} ({} spans, {} dropped)",
            path.display(),
            sink.len(),
            sink.dropped()
        );
    }
    if cli.trace_summary {
        println!("\n{}", sink.render_summary());
    }
    Ok(())
}

/// Runs the engine as a session, honouring `--resume`, `--checkpoint-out`,
/// and `--checkpoint-every`. On resume the checkpoint is authoritative for
/// the seed set and determinism fingerprint (`seeds` is ignored); an
/// explicit `--budget` tops up the probe budget, otherwise the
/// checkpoint's budget continues to apply.
fn run_engine(cli: &Cli, seeds: Vec<NybbleAddr>, config: Config) -> Result<Outcome, String> {
    let session = match &cli.resume {
        Some(path) => {
            let checkpoint = EngineCheckpoint::load(path)
                .map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()))?;
            eprintln!(
                "resuming from {} (round {}, {} targets already generated)",
                path.display(),
                checkpoint.rounds,
                checkpoint.generated.len()
            );
            let config = Config {
                mode: checkpoint.mode,
                rng_seed: checkpoint.rng_seed,
                unfused_growth: checkpoint.unfused_growth,
                budget: cli.budget.unwrap_or(checkpoint.budget),
                ..config
            };
            Session::resume(checkpoint, config)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?
        }
        None => SixGen::new(seeds, config).session(),
    };
    let Some(path) = &cli.checkpoint_out else {
        if cli.checkpoint_every.is_some() {
            return Err("--checkpoint-every requires --checkpoint-out".into());
        }
        return Ok(session.run());
    };
    let every = cli.checkpoint_every.unwrap_or(1).max(1);
    let mut writer = CheckpointWriter::new(path);
    let mut broken = false;
    let outcome = session.run_with(|session| {
        if broken || !session.rounds().is_multiple_of(every) {
            return;
        }
        if let Err(e) = writer.write(&session.checkpoint()) {
            eprintln!(
                "warning: checkpoint write to {} failed persistently ({e}); \
                 continuing without further checkpoints",
                path.display()
            );
            broken = true;
        }
    });
    if writer.writes() > 0 {
        eprintln!(
            "{} checkpoint(s) written to {}",
            writer.writes(),
            path.display()
        );
    }
    Ok(outcome)
}

fn cmd_generate(cli: &Cli) -> Result<(), String> {
    // On resume the checkpoint carries the seed set; --seeds is not needed.
    let seeds = if cli.resume.is_some() {
        Vec::new()
    } else {
        load_seeds(cli)?
    };
    let metrics = metrics_registry(cli);
    let trace = trace_sink(cli)?;
    let outcome = run_engine(
        cli,
        seeds,
        Config {
            budget: budget(cli),
            mode: cli.mode,
            threads: 0,
            rng_seed: cli.rng_seed,
            time_limit: cli.time_limit,
            metrics: metrics.clone(),
            trace: trace.clone(),
            ..Config::default()
        },
    )?;
    eprintln!(
        "6Gen: {} targets from {} seeds ({} clusters, stopped: {:?})",
        outcome.targets.len(),
        outcome.stats.seed_count,
        outcome.clusters.len(),
        outcome.stats.termination,
    );
    write_metrics(cli, &metrics)?;
    write_trace(cli, &trace)?;
    write_targets(cli, outcome.targets.as_slice())
}

fn cmd_analyze(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    println!("seeds: {}", seeds.len());
    println!("\nper-nybble entropy (0 = fixed, 1 = uniform):");
    let profile = entropy_profile(&seeds);
    for (i, h) in profile.iter().enumerate() {
        let bar = "#".repeat((h * 32.0).round() as usize);
        println!("  nybble {:>2}: {:>5.3} {}", i + 1, h, bar);
    }
    let outcome = SixGen::new(
        seeds,
        Config {
            budget: budget(cli),
            rng_seed: cli.rng_seed,
            threads: 0,
            ..Config::default()
        },
    )
    .run();
    println!("\n6Gen clusters (budget {}):", budget(cli));
    let mut clusters = outcome.clusters;
    clusters.sort_by_key(|c| std::cmp::Reverse(c.seed_count));
    for c in clusters.iter().take(24) {
        println!(
            "  {:<40} {:>7} seeds / {:>12} addrs",
            c.range.to_string(),
            c.seed_count,
            c.range_size
        );
    }
    if clusters.len() > 24 {
        println!("  ... and {} more clusters", clusters.len() - 24);
    }
    Ok(())
}

fn cmd_split(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    let prefix = cli.out_prefix.as_ref().ok_or("--out-prefix is required")?;
    if cli.groups == 0 {
        return Err("--groups must be positive".into());
    }
    let mut rng = StdRng::seed_from_u64(cli.rng_seed);
    let groups = split_groups(&seeds, cli.groups, &mut rng);
    for (i, group) in groups.iter().enumerate() {
        let path = PathBuf::from(format!("{}.{i}.txt", prefix.display()));
        write_hitlist_file(&path, group)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {} ({} addresses)", path.display(), group.len());
    }
    Ok(())
}

fn cmd_entropy_ip(cli: &Cli) -> Result<(), String> {
    let seeds = load_seeds(cli)?;
    let model = EntropyIpModel::fit(&seeds, &EntropyIpConfig::default());
    eprintln!(
        "Entropy/IP: {} segments, generating up to {} targets",
        model.segments().len(),
        budget(cli)
    );
    let mut rng = StdRng::seed_from_u64(cli.rng_seed);
    let targets = model.generate(budget(cli) as usize, &mut rng);
    eprintln!("generated {} distinct targets", targets.len());
    write_targets(cli, &targets)
}

fn cmd_simulate(cli: &Cli) -> Result<(), String> {
    use sixgen::simnet::faults::{FaultModel, GilbertElliott, GilbertElliottConfig, IcmpRateLimit};
    use sixgen::simnet::{
        HostScheme, Internet, NetworkSpec, ProbeConfig, Prober, RetryPolicy, SeedExtraction,
    };

    let mut faults: Vec<Box<dyn FaultModel>> = Vec::new();
    if cli.bursty {
        faults.push(Box::new(
            GilbertElliott::new(GilbertElliottConfig::default()).map_err(|e| e.to_string())?,
        ));
    }
    if let Some(rate) = cli.rate_limit {
        faults.push(Box::new(
            IcmpRateLimit::new(48, rate, rate).map_err(|e| e.to_string())?,
        ));
    }
    let retry = match cli.backoff {
        Some(base) => RetryPolicy::ExponentialBackoff {
            base,
            cap: std::time::Duration::from_secs(60),
        },
        None => RetryPolicy::Immediate,
    };
    let metrics = metrics_registry(cli);
    let trace = trace_sink(cli)?;
    let probe_config = ProbeConfig {
        loss: cli.loss,
        retries: cli.retries,
        rate_pps: cli.rate_pps,
        rng_seed: cli.rng_seed ^ 0x5CA7,
        faults,
        retry,
        retransmit_budget: cli.retransmit_budget,
        metrics: metrics.clone(),
        trace: trace.clone(),
    };
    // Reject a bad scanner config before spending time on generation.
    probe_config.validate().map_err(|e| e.to_string())?;

    let mut rng = StdRng::seed_from_u64(cli.rng_seed);
    let per_network = (cli.hosts / 2).max(1);
    let internet = Internet::build(
        vec![
            NetworkSpec::simple(
                "2001:db8::/32".parse().unwrap(),
                64496,
                "SimSequential",
                HostScheme::LowByteSequential,
                per_network,
            ),
            NetworkSpec::simple(
                "2620:100::/40".parse().unwrap(),
                64497,
                "SimSparse",
                HostScheme::LowByteRandom { nybbles: 4 },
                per_network,
            ),
        ],
        &mut rng,
    )
    .map_err(|e| e.to_string())?;

    let seeds: Vec<NybbleAddr> = internet
        .extract_seeds(&SeedExtraction::default(), &mut rng)
        .into_iter()
        .map(|record| record.addr)
        .collect();
    let outcome = run_engine(
        cli,
        seeds.clone(),
        Config {
            budget: budget(cli),
            mode: cli.mode,
            threads: 0,
            rng_seed: cli.rng_seed,
            time_limit: cli.time_limit,
            metrics: metrics.clone(),
            trace: trace.clone(),
            ..Config::default()
        },
    )?;
    eprintln!(
        "6Gen: {} targets from {} seeds (stopped: {:?})",
        outcome.targets.len(),
        outcome.stats.seed_count,
        outcome.stats.termination,
    );

    let mut prober = Prober::new(&internet, probe_config).map_err(|e| e.to_string())?;
    let result = prober.scan(outcome.targets.iter(), 80);
    let stats = prober.stats();
    println!(
        "scan: {} hits / {} targets ({:.1}% hit rate)",
        result.hits.len(),
        result.targets,
        result.hit_rate() * 100.0,
    );
    println!(
        "packets: {} sent ({} retransmits), {} responses",
        stats.packets_sent, stats.retransmits, stats.responses,
    );
    println!(
        "simulated duration: {:.3}s at {} pps (incl. backoff waits)",
        prober.simulated_duration().as_secs_f64(),
        cli.rate_pps,
    );
    println!(
        "ground truth: {} active hosts, {} recovered ({:.1}%)",
        internet.active_host_count(),
        result.hits.len(),
        result.hits.len() as f64 / internet.active_host_count().max(1) as f64 * 100.0,
    );
    write_metrics(cli, &metrics)?;
    write_trace(cli, &trace)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let Some(cli) = parse(rest) else {
        return usage();
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&cli),
        "analyze" => cmd_analyze(&cli),
        "split" => cmd_split(&cli),
        "entropy-ip" => cmd_entropy_ip(&cli),
        "simulate" => cmd_simulate(&cli),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
