//! # sixgen — a reproduction of 6Gen (IMC 2017)
//!
//! Facade crate re-exporting the full reproduction of Murdock et al.,
//! *Target Generation for Internet-wide IPv6 Scanning* (IMC 2017): the 6Gen
//! target generation algorithm, the Entropy/IP and pattern baselines, the
//! simulated IPv6 Internet and scanner substrate, routing, datasets, and
//! reporting. See `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.

#![forbid(unsafe_code)]

pub use sixgen_addr as addr;
pub use sixgen_baselines as baselines;
pub use sixgen_core as core;
pub use sixgen_datasets as datasets;
pub use sixgen_entropy_ip as entropy_ip;
pub use sixgen_obs as obs;
pub use sixgen_report as report;
pub use sixgen_routing as routing;
pub use sixgen_simnet as simnet;
