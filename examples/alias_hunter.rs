//! Alias detection walkthrough (§6.2): scan a CDN-heavy corner of the
//! simulated Internet, then detect and filter fully-responsive regions at
//! /96 granularity — and show why /112-granularity aliasing needs the
//! per-AS refinement.
//!
//! ```sh
//! cargo run --release --example alias_hunter
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::Prefix;
use sixgen::core::{Config, SixGen};
use sixgen::report::percent;
use sixgen::simnet::dealias::{detect_aliased, DealiasConfig};
use sixgen::simnet::{
    AliasedRegion, HostKind, HostPopulation, HostScheme, Internet, NetworkSpec, ProbeConfig,
    Prober, SeedExtraction, SubnetPlan,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let internet = Internet::build(
        vec![
            // An honest hosting network.
            NetworkSpec::simple(
                "2001:db8::/32".parse().unwrap(),
                64496,
                "HonestHosting",
                HostScheme::LowByteSequential,
                400,
            ),
            // A CDN with an aliased /48.
            NetworkSpec {
                prefix: "2600:aa00::/32".parse().unwrap(),
                asn: 20940,
                name: "BigCdn".into(),
                populations: vec![HostPopulation {
                    scheme: HostScheme::LowByteRandom { nybbles: 4 },
                    subnets: SubnetPlan::Single(7),
                    count: 300,
                    churned: 0,
                    kind: HostKind::Web,
                }],
                aliased: vec![AliasedRegion {
                    prefix: "2600:aa00::/48".parse().unwrap(),
                    ports: vec![80],
                }],
                ports: vec![80],
            },
            // A provider aliased only at /112 granularity — invisible to
            // the /96 test.
            NetworkSpec {
                prefix: "2606:4700::/32".parse().unwrap(),
                asn: 13335,
                name: "Sneaky112".into(),
                populations: vec![HostPopulation {
                    scheme: HostScheme::LowByteRandom { nybbles: 3 },
                    subnets: SubnetPlan::Single(0),
                    count: 300,
                    churned: 0,
                    kind: HostKind::Web,
                }],
                aliased: vec![AliasedRegion {
                    prefix: "2606:4700::/112".parse().unwrap(),
                    ports: vec![80],
                }],
                ports: vec![80],
            },
        ],
        &mut rng,
    )
    .expect("unique prefixes");

    // Seed → generate → scan.
    let seeds = internet.extract_seeds(
        &SeedExtraction {
            visibility: 0.6,
            stale_visibility: 0.0,
        },
        &mut rng,
    );
    let (mut grouped, _) = internet.table().group_by_prefix(seeds.iter().map(|r| r.addr));
    let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
    let mut hits = Vec::new();
    // Scan prefixes in sorted order: HashMap iteration order varies across
    // runs, and the prober's RNG state carries over between scans, so an
    // unsorted walk would make hit counts nondeterministic despite the
    // fixed seeds.
    let mut prefixes: Vec<Prefix> = grouped.keys().copied().collect();
    prefixes.sort();
    for prefix in prefixes {
        let prefix_seeds = grouped.remove(&prefix).expect("listed prefix");
        let outcome = SixGen::new(prefix_seeds, Config::with_budget(30_000)).run();
        hits.extend(prober.scan(outcome.targets.iter(), 80).hits);
    }
    println!("raw hits: {}", hits.len());

    // Pass 1: the paper's /96 detector.
    let report96 = detect_aliased(&mut prober, &hits, 80, &DealiasConfig::default());
    let (clean, aliased) = report96.split(hits.iter());
    println!(
        "/96 pass: {} of {} hit-bearing /96s aliased → {} hits filtered ({}), {} kept",
        report96.aliased.len(),
        report96.tested,
        aliased.len(),
        percent(aliased.len() as u64, hits.len() as u64),
        clean.len()
    );

    // The /112 aliaser slipped through: all its hits survive the /96 pass.
    let sneaky: Prefix = "2606:4700::/32".parse().unwrap();
    let survivors = clean.iter().filter(|h| sneaky.contains(**h)).count();
    println!("Sneaky112 hits surviving the /96 pass: {survivors} (all of them)");

    // Pass 2: per-AS /112 refinement on the survivors.
    let sneaky_hits: Vec<_> = clean.iter().copied().filter(|h| sneaky.contains(*h)).collect();
    let report112 = detect_aliased(
        &mut prober,
        &sneaky_hits,
        80,
        &DealiasConfig {
            prefix_len: 112,
            ..DealiasConfig::default()
        },
    );
    println!(
        "/112 pass over that AS: {} of {} /112s aliased → exclude the AS",
        report112.aliased.len(),
        report112.tested
    );
    let final_clean: Vec<_> = clean
        .iter()
        .filter(|h| !sneaky.contains(**h))
        .collect();
    println!(
        "final dealiased hits: {} (honest hosting survives; both alias styles filtered)",
        final_clean.len()
    );
}
