//! Target-generation shootout: 6Gen vs Entropy/IP vs the Ullrich recursive
//! algorithm vs RFC 7707 low-byte sweeps vs brute-force guessing, on one
//! structured CDN-style network.
//!
//! ```sh
//! cargo run --release --example tga_shootout -- [--budget 100000]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::addr::NybbleAddr;
use sixgen::baselines::ullrich::BitRange;
use sixgen::baselines::{
    dense_prefix_targets, low_byte_targets, random_prefix_targets, ullrich_targets,
};
use sixgen::core::{Config, SixGen};
use sixgen::datasets::{cdn_internet, cdn_seed_sample, inverse_kfold, split_groups, Cdn};
use sixgen::entropy_ip::{EntropyIpConfig, EntropyIpModel};
use sixgen::report::TextTable;
use sixgen::simnet::{ProbeConfig, Prober};

fn main() {
    let mut budget = 100_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).expect("--budget N"),
            other => panic!("unknown option {other}"),
        }
    }

    // CDN 3: embedded-IPv4 hosts over sequential subnets — structured but
    // not trivial.
    let internet = cdn_internet(Cdn::Three, 20_000, 99);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = cdn_seed_sample(&internet, 10_000, &mut rng);
    let folds = inverse_kfold(&split_groups(&sample, 10, &mut rng));
    let (train, _test) = &folds[0];
    let routed = internet.networks()[0].spec().prefix;
    println!(
        "network {} — training on {} seeds, budget {}",
        routed,
        train.len(),
        budget
    );

    let generators: Vec<(&str, Vec<NybbleAddr>)> = vec![
        ("6Gen", {
            SixGen::new(train.iter().copied(), Config::with_budget(budget))
                .run()
                .targets
                .into_vec()
        }),
        ("Entropy/IP", {
            let model = EntropyIpModel::fit(train, &EntropyIpConfig::default());
            let mut rng = StdRng::seed_from_u64(11);
            model.generate(budget as usize, &mut rng)
        }),
        ("Ullrich (N=16)", {
            // The recursive algorithm needs a start range: the routed
            // prefix, narrowed until 16 undetermined bits (2^16 targets;
            // it cannot use the budget any further — a fixed-size output
            // is its documented limitation).
            ullrich_targets(
                train,
                BitRange::from_prefix(routed.network(), routed.len()),
                16,
            )
            .targets()
        }),
        ("Low-byte /8", low_byte_targets(train, budget as usize, 8)),
        ("Dense /116 (MRA)", {
            let mut rng = StdRng::seed_from_u64(12);
            dense_prefix_targets(train, 116, budget as usize, &mut rng)
        }),
        ("Random guess", {
            let mut rng = StdRng::seed_from_u64(13);
            random_prefix_targets(routed, budget as usize, &mut rng)
        }),
    ];

    let mut table = TextTable::new(vec!["Algorithm", "Targets", "Hits", "Hit rate"]);
    for (name, targets) in generators {
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let scan = prober.scan(targets, 80);
        table.row(vec![
            name.to_owned(),
            scan.targets.to_string(),
            scan.hits.len().to_string(),
            format!("{:.4}%", scan.hit_rate() * 100.0),
        ]);
    }
    println!("\n{table}");
}
