//! Scanner-integrated target generation (the paper's §8 direction): run
//! the adaptive feedback loop against the simulated Internet and compare
//! it with the classic offline generate→scan pipeline at the same probe
//! budget.
//!
//! ```sh
//! cargo run --release --example feedback_scan -- [--budget 15000] [--scale 0.3]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sixgen::core::{adaptive_scan, AdaptiveConfig, Config, RegionFate, SixGen};
use sixgen::datasets::world::{build_world, WorldConfig};
use sixgen::report::group_digits;
use sixgen::simnet::{ProbeConfig, Prober, SeedExtraction};

fn main() {
    let mut budget = 15_000u64;
    let mut scale = 0.3f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).expect("--budget N"),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale F"),
            other => panic!("unknown option {other}"),
        }
    }

    let internet = build_world(&WorldConfig {
        scale,
        ..WorldConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(3);
    let seeds = internet.extract_seeds(&SeedExtraction::default(), &mut rng);
    let (grouped, _) = internet.table().group_by_prefix(seeds.iter().map(|r| r.addr));

    // Pick the most seed-rich prefixes for a readable demo.
    let mut ranked: Vec<_> = grouped.into_iter().collect();
    ranked.sort_by_key(|(p, v)| (std::cmp::Reverse(v.len()), *p));
    ranked.truncate(8);

    println!(
        "{:<22} {:>6}  {:>22}  {:>26}",
        "routed prefix", "seeds", "offline hits/probes", "adaptive hits/probes"
    );
    for (prefix, prefix_seeds) in ranked {
        // Offline: generate all targets, scan them.
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let outcome = SixGen::new(prefix_seeds.iter().copied(), Config::with_budget(budget)).run();
        let offline = prober.scan(outcome.targets.iter(), 80);

        // Adaptive: interleave generation and probing at the same budget.
        let mut prober = Prober::new(&internet, ProbeConfig::default()).expect("valid probe config");
        let adaptive = adaptive_scan(
            prefix_seeds.iter().copied(),
            &AdaptiveConfig {
                budget,
                ..AdaptiveConfig::default()
            },
            |addr| prober.probe(addr, 80),
        );
        let aliased = adaptive
            .regions
            .iter()
            .filter(|r| r.fate == RegionFate::Aliased)
            .count();
        let flag = if aliased > 0 { " [aliasing dodged]" } else { "" };
        println!(
            "{:<22} {:>6}  {:>10} / {:>9}  {:>10} / {:>9}{}",
            prefix.to_string(),
            prefix_seeds.len(),
            group_digits(offline.hits.len() as u64),
            group_digits(offline.probes),
            group_digits(adaptive.hits.len() as u64),
            group_digits(adaptive.probes_used),
            flag,
        );
    }
    println!(
        "\nNote: offline hit counts include aliased mirages (they respond but are\n\
         not distinct hosts); the adaptive loop excludes them on the fly and\n\
         refunds the unspent probes to other regions."
    );
}
