//! End-to-end Internet-wide scan against the simulated IPv6 Internet: the
//! paper's full §6 pipeline in one binary.
//!
//! Build the world → extract DNS-like seeds → group by routed prefix →
//! run 6Gen per prefix → scan TCP/80 → dealias at /96 → report.
//!
//! ```sh
//! cargo run --release --example internet_scan -- [--scale 0.3] [--budget 20000] [--loss 0.05]
//! ```
//!
//! `--loss` enables probabilistic packet loss (fault injection, in the
//! smoltcp examples' `--drop-chance` tradition) with one retry.

use sixgen::core::{ClusterMode, Config, SixGen};
use sixgen::datasets::world::{build_world, WorldConfig};
use sixgen::report::{group_digits, percent, TextTable};
use sixgen::simnet::dealias::{dealias_hits, DealiasConfig};
use sixgen::simnet::{ProbeConfig, Prober, SeedExtraction};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut scale = 0.3f64;
    let mut budget = 20_000u64;
    let mut loss = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale F"),
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).expect("--budget N"),
            "--loss" => loss = args.next().and_then(|v| v.parse().ok()).expect("--loss F"),
            other => panic!("unknown option {other}"),
        }
    }

    println!("building simulated Internet (scale {scale})...");
    let internet = build_world(&WorldConfig {
        scale,
        ..WorldConfig::default()
    });
    println!(
        "  {} networks, {} active hosts",
        internet.networks().len(),
        group_digits(internet.active_host_count() as u64)
    );

    let mut rng = StdRng::seed_from_u64(7);
    let records = internet.extract_seeds(&SeedExtraction::default(), &mut rng);
    let (grouped, _) = internet
        .table()
        .group_by_prefix(records.iter().map(|r| r.addr));
    println!(
        "  extracted {} seeds in {} routed prefixes",
        group_digits(records.len() as u64),
        grouped.len()
    );

    let mut prober = Prober::new(
        &internet,
        ProbeConfig {
            loss,
            retries: u8::from(loss > 0.0),
            ..ProbeConfig::default()
        },
    )
    .expect("valid probe config");

    let mut prefixes: Vec<_> = grouped.keys().copied().collect();
    prefixes.sort();
    let mut all_hits = Vec::new();
    let mut generated = 0u64;
    for prefix in prefixes {
        let seeds = &grouped[&prefix];
        if seeds.len() < 2 {
            continue;
        }
        let outcome = SixGen::new(
            seeds.iter().copied(),
            Config {
                budget,
                mode: ClusterMode::Loose,
                threads: 0,
                ..Config::default()
            },
        )
        .run();
        generated += outcome.targets.len() as u64;
        let scan = prober.scan(outcome.targets.iter(), 80);
        all_hits.extend(scan.hits);
    }
    println!(
        "\nscanned {} generated targets ({} probes, ~{:?} at 100 Kpps): {} hits",
        group_digits(generated),
        group_digits(prober.stats().packets_sent),
        prober.simulated_duration(),
        group_digits(all_hits.len() as u64)
    );

    let (report, clean, aliased) =
        dealias_hits(&mut prober, &all_hits, 80, &DealiasConfig::default());
    println!(
        "dealiasing: {} of {} hit-bearing /96s aliased; {} hits aliased ({}), {} kept",
        report.aliased.len(),
        report.tested,
        group_digits(aliased.len() as u64),
        percent(aliased.len() as u64, all_hits.len() as u64),
        group_digits(clean.len() as u64)
    );

    // Top ASes by dealiased hits.
    let mut by_asn: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for hit in &clean {
        if let Some(entry) = internet.table().lookup(*hit) {
            *by_asn.entry(entry.asn).or_default() += 1;
        }
    }
    let mut sorted: Vec<(u32, u64)> = by_asn.into_iter().collect();
    sorted.sort_by_key(|&(asn, c)| (std::cmp::Reverse(c), asn));
    let mut table = TextTable::new(vec!["AS Name", "ASN", "Dealiased hits"]);
    for (asn, count) in sorted.into_iter().take(10) {
        table.row(vec![
            internet.registry().name(asn),
            asn.to_string(),
            group_digits(count),
        ]);
    }
    println!("\ntop ASes by dealiased hits:\n{table}");
}
