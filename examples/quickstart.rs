//! Quickstart: feed 6Gen a handful of known addresses and print the scan
//! targets it generates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sixgen::core::{Config, SixGen};

fn main() {
    // Seeds: addresses you already know (e.g. from DNS AAAA records).
    // Note the structure — low-byte hosts in two /64 subnets.
    let seeds: Vec<sixgen::addr::NybbleAddr> = [
        "2001:db8:0:1::10",
        "2001:db8:0:1::11",
        "2001:db8:0:1::15",
        "2001:db8:0:2::21",
        "2001:db8:0:2::25",
        "2001:db8:0:2::2a",
    ]
    .iter()
    .map(|s| s.parse().expect("valid IPv6"))
    .collect();

    // A probe budget of 600 addresses.
    let outcome = SixGen::new(seeds, Config::with_budget(600)).run();

    println!("6Gen generated {} targets", outcome.targets.len());
    println!("stopped because: {:?}", outcome.stats.termination);
    println!("\nclusters:");
    for cluster in &outcome.clusters {
        println!(
            "  {:<24} {} seeds in {} addresses (density {:.3})",
            cluster.range.to_string(),
            cluster.seed_count,
            cluster.range_size,
            cluster.seed_count as f64 / cluster.range_size as f64,
        );
    }

    println!("\nfirst 16 targets:");
    for target in outcome.targets.iter().take(16) {
        println!("  {target}");
    }
}
